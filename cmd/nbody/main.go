// Command nbody is the general-purpose treecode driver: it generates a
// particle distribution, evaluates potentials with the selected method, and
// prints accuracy and cost statistics (optionally advancing an n-body
// simulation with leapfrog).
package main

import (
	"flag"
	"fmt"
	"os"

	"treecode/internal/cliio"
	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/points"
	"treecode/internal/sim"
	"treecode/internal/stats"
	"treecode/internal/vec"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution: uniform|gaussian|multigauss|grid|shell|plummer")
	n := flag.Int("n", 10000, "number of particles")
	method := flag.String("method", "adaptive", "original|adaptive")
	eval := flag.String("eval", "walk", "evaluation mode: walk|batched")
	degree := flag.Int("degree", 4, "multipole degree (minimum for adaptive)")
	alpha := flag.Float64("alpha", 0.5, "acceptance parameter")
	leafCap := flag.Int("leaf", 8, "octree leaf capacity")
	workers := flag.Int("workers", 0, "evaluation goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "workload seed")
	checkErr := flag.Bool("check", true, "compare against direct summation (O(n^2))")
	steps := flag.Int("steps", 0, "leapfrog steps to advance (0 = potentials only)")
	dt := flag.Float64("dt", 1e-3, "timestep for -steps")
	rebuild := flag.String("rebuild", "auto", "evaluator lifecycle across steps: auto (persistent engine, incremental refits) | every (fresh build per force evaluation)")
	bf := cliio.BlockFlagVars()
	ob := cliio.ObsFlagVars()
	flag.Parse()

	m := core.Original
	if *method == "adaptive" {
		m = core.Adaptive
	}
	ev, err := core.ParseEvalMode(*eval)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	col, err := ob.Start("treecode.nbody")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := core.Config{Method: m, Eval: ev, Degree: *degree, Alpha: *alpha, LeafCap: *leafCap, Workers: *workers, Obs: col}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	set, err := points.Generate(points.Distribution(*dist), *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *steps > 0 {
		policy, err := sim.ParseRebuildPolicy(*rebuild)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s, err := sim.New(sim.State{Set: set, Vel: make([]vec.V3, set.N())}, sim.Config{
			Dt: *dt, Force: cfg, Soften: 0.01, Rebuild: policy, Block: bf.Config(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k0, p0, e0 := s.Energy()
		if err := s.Run(*steps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k1, p1, e1 := s.Energy()
		fmt.Printf("advanced %d steps of %d-body %s system (dt=%g, rebuild=%s)\n", *steps, *n, *dist, *dt, policy)
		fmt.Printf("energy: kin %.6g -> %.6g, pot %.6g -> %.6g, total %.6g -> %.6g (drift %.3g)\n",
			k0, k1, p0, p1, e0, e1, (e1-e0)/e0)
		if col != nil {
			r := col.Metrics().Refit
			if r.Updates > 0 {
				fmt.Printf("engine: %d updates (%d refits, %d rebuilds), %d migrants, %d splits, %d merges, max radius inflation %.3f\n",
					r.Updates, r.Refits, r.Rebuilds, r.Migrants, r.Splits, r.Merges, r.RadiusInflationMax)
			}
		}
		if bf.Rungs > 0 {
			if rungs := s.Rungs(); rungs != nil {
				occ := make([]int, bf.Rungs)
				for _, r := range rungs {
					occ[r]++
				}
				fmt.Printf("block: %d rungs, final occupancy %v\n", bf.Rungs, occ)
			}
			if col != nil {
				if b := col.Metrics().Block; b.Substeps > 0 {
					reduction := float64(int64(*n)*b.Substeps) / float64(b.ForceEvals)
					fmt.Printf("block: %d substeps, %d force evals (%.2fx vs global at finest grid), %d promotions, %d demotions, staleness %.3g\n",
						b.Substeps, b.ForceEvals, reduction, b.Promotions, b.Demotions, b.Staleness)
				}
			}
		}
		finishObs(ob)
		return
	}

	e, err := core.New(set, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	phi, st := e.Potentials()
	fmt.Printf("%s treecode (%s eval), %s distribution, n=%d, degree=%d, alpha=%g\n",
		m, ev, *dist, *n, *degree, *alpha)
	fmt.Printf("tree: height %d, %d nodes, %d leaves; build %v\n",
		st.TreeHeight, st.TreeNodes, st.TreeLeaves, st.BuildTime)
	fmt.Printf("eval: %v; %s terms (%d cluster, %d direct interactions); max degree %d\n",
		st.EvalTime, stats.FormatCount(st.Terms), st.PC, st.PP, st.MaxDegree)
	fmt.Printf("predicted error bound per point (mean): %s\n",
		stats.FormatFloat(st.BoundSum/float64(*n)))
	if *checkErr {
		exact := direct.SelfPotentials(set, 0)
		fmt.Printf("relative 2-norm error vs direct: %s\n",
			stats.FormatFloat(stats.RelErr2(phi, exact)))
	}
	finishObs(ob)
}

// finishObs exports the obs trace when -obsjson asked for one.
func finishObs(ob *cliio.ObsFlags) {
	if err := ob.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "nbody: writing obs trace: %v\n", err)
		os.Exit(1)
	}
}
