// Command table3 reproduces Table 3 of the paper: single-iteration errors
// and execution times of the boundary-element matrix-vector product on the
// propeller and gripper surfaces, for the original and improved methods at
// several degrees, with accuracy measured against a degree-9 reference
// (exact direct summation over all Gauss points is far slower, exactly as
// in the paper, and can be enabled with -exact).
//
// The paper's industrial meshes are replaced by parametric synthetic
// surfaces with the same character (all nodes on surfaces, empty volume);
// -density scales them toward the paper's 140k-186k element counts.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"treecode/internal/bem"
	"treecode/internal/core"
	"treecode/internal/krylov"
	"treecode/internal/mesh"
	"treecode/internal/obs"
	"treecode/internal/stats"
)

func main() {
	density := flag.Int("density", 2, "mesh density (10 reproduces the paper's element counts)")
	alpha := flag.Float64("alpha", 0.4, "acceptance parameter")
	quad := flag.Int("quad", 6, "Gauss points per element (paper: 6)")
	refDegree := flag.Int("refdegree", 9, "reference expansion degree (paper: 9)")
	exact := flag.Bool("exact", false, "also compute the exact direct-summation product")
	gmres := flag.Bool("gmres", true, "also run a GMRES(10) solve with the improved method")
	obsJSON := flag.String("obsjson", "", "write the obs trace as JSON to FILE (- for stdout)")
	flag.Parse()

	if err := (core.Config{Degree: *refDegree, Alpha: *alpha}).Validate(); err != nil {
		fmt.Println("error:", err)
		return
	}
	var col *obs.Collector // nil keeps the operators uninstrumented
	if *obsJSON != "" {
		col = obs.New()
	}

	type surf struct {
		name string
		m    *mesh.Mesh
	}
	cases := []surf{
		{"propeller", mesh.Propeller(3, *density)},
		{"gripper", mesh.Gripper(*density)},
	}

	for _, c := range cases {
		fmt.Printf("== Table 3: %s — %d elements, %d nodes, %d Gauss points per element ==\n",
			c.name, c.m.NumTris(), c.m.NumVerts(), *quad)

		// Reference product: degree-9 original method (as in the paper).
		refOp, err := bem.New(c.m, *quad, &core.Config{Method: core.Original, Degree: *refDegree, Alpha: *alpha})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		n := c.m.NumVerts()
		src := make([]float64, n)
		for i := range src {
			src[i] = 1 + 0.5*math.Sin(float64(i)) // a generic density
		}
		ref := make([]float64, n)
		start := time.Now()
		if _, err := refOp.TreeApply(ref, src); err != nil {
			fmt.Println("error:", err)
			return
		}
		refTime := time.Since(start).Seconds()

		var exactTime float64
		if *exact {
			ex := make([]float64, n)
			start := time.Now()
			refOp.Apply(ex, src)
			exactTime = time.Since(start).Seconds()
			fmt.Printf("exact direct product: %.2fs (error of degree-%d reference vs exact: %s)\n",
				exactTime, *refDegree, stats.FormatFloat(stats.RelErr2(ref, ex)))
			ref = ex
		}

		tb := stats.NewTable("Algorithm", "Degree", "Err", "Time(s)", "Terms")
		for _, method := range []core.Method{core.Original, core.Adaptive} {
			for _, p := range []int{2, 3, 4, 5} {
				op, err := bem.New(c.m, *quad, &core.Config{Method: method, Degree: p, Alpha: *alpha, Obs: col})
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				dst := make([]float64, n)
				start := time.Now()
				st, err := op.TreeApply(dst, src)
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				tb.AddRow(method.String(), p, stats.RelErr2(dst, ref),
					time.Since(start).Seconds(), stats.FormatCount(st.Terms))
			}
		}
		tb.AddRow("reference", *refDegree, 0.0, refTime, "-")
		fmt.Println(tb)

		if *gmres {
			op, err := bem.New(c.m, *quad, &core.Config{Method: core.Adaptive, Degree: 5, Alpha: *alpha})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = 1
			}
			bj, err := op.BlockPreconditioner(48)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			x := make([]float64, n)
			start := time.Now()
			res, err := krylov.GMRES(krylov.OperatorFunc(op.TreeOperator()), b, x, krylov.Options{
				Restart: 10, MaxIters: 300, Tol: 1e-6, Precond: bj,
			})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("GMRES(10)+block-precond on V*sigma=1: %d products, residual %s, converged=%v, %.2fs\n\n",
				res.Iterations, stats.FormatFloat(res.Residual), res.Converged, time.Since(start).Seconds())
		}
	}
	if *obsJSON != "" {
		if err := obs.WriteJSON(col, *obsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "table3: writing obs trace:", err)
			os.Exit(1)
		}
	}
}
