// Command sweep runs a parameter grid over (n, alpha, degree, method) and
// emits one CSV row per configuration with error and cost measurements —
// the general research harness behind the per-table drivers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"treecode/internal/cliio"
	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/points"
	"treecode/internal/stats"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution")
	sizes := flag.String("n", "4000,16000", "particle counts")
	alphas := flag.String("alpha", "0.4,0.5,0.6", "acceptance parameters")
	degrees := flag.String("degree", "3,5", "degrees")
	methods := flag.String("method", "original,adaptive", "methods")
	unitCharge := flag.Bool("unitcharge", true, "unit charge per particle")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("o", "", "output file (default stdout)")
	evalStr := flag.String("eval", "walk", "evaluation mode: walk or batched")
	ob := cliio.ObsFlagVars()
	flag.Parse()

	evalMode, err := core.ParseEvalMode(*evalStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	col, err := ob.Start("treecode.sweep")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	degs, alphaVals := splitInts(*degrees), splitFloats(*alphas)
	for _, deg := range degs {
		for _, alpha := range alphaVals {
			if err := (core.Config{Degree: deg, Alpha: alpha}).Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	w, werr := cliio.Create(*out)
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}

	fmt.Fprintln(w.W, "dist,n,method,eval,degree,alpha,relerr,abserr,terms,pc,pp,maxdegree,evalms")
	for _, ns := range splitInts(*sizes) {
		totalAbs := 1.0
		if *unitCharge {
			totalAbs = float64(ns)
		}
		set, err := points.GenerateCharged(points.Distribution(*dist), ns, *seed, totalAbs, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exact := direct.SelfPotentials(set, 0)
		for _, method := range strings.Split(*methods, ",") {
			m := core.Original
			if strings.TrimSpace(method) == "adaptive" {
				m = core.Adaptive
			}
			for _, deg := range degs {
				for _, alpha := range alphaVals {
					e, err := core.New(set, core.Config{Method: m, Degree: deg, Alpha: alpha, Eval: evalMode, Obs: col})
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						continue
					}
					phi, st := e.Potentials()
					fmt.Fprintf(w.W, "%s,%d,%s,%s,%d,%g,%s,%s,%d,%d,%d,%d,%.1f\n",
						*dist, ns, m, evalMode, deg, alpha,
						stats.FormatFloat(stats.RelErr2(phi, exact)),
						stats.FormatFloat(stats.MeanAbsErr(phi, exact)),
						st.Terms, st.PC, st.PP, st.MaxDegree,
						float64(st.EvalTime.Microseconds())/1000)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: writing %s: %v\n", w.Name(), err)
		os.Exit(1)
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: writing obs trace: %v\n", err)
		os.Exit(1)
	}
}

func splitInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(f)); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func splitFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		if v, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}
