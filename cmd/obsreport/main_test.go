package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treecode/internal/benchfmt"
	"treecode/internal/cliio"
	"treecode/internal/obs"
)

// sampleDoc builds a small self-consistent benchmark document.
func sampleDoc() *benchfmt.Doc {
	relErr := 2.5e-7
	return &benchfmt.Doc{
		Schema: benchfmt.Schema, Method: "adaptive", Alpha: 0.5, Degree: 4, Seed: 42,
		Results: []benchfmt.Result{
			{Dist: "uniform", N: 10000, Mode: "walk", Workers: 1, EvalMS: 100,
				Terms: 123456, PC: 2000, PP: 5000, MaxDegree: 7, BoundSum: 1.25, RelErrDirect: &relErr},
			{Dist: "uniform", N: 10000, Mode: "batched", Workers: 1, EvalMS: 60,
				Terms: 123456, PC: 2000, PP: 5000, MaxDegree: 7, BoundSum: 1.25, RelErrDirect: &relErr},
		},
		Steps: []benchfmt.StepResult{
			{Dist: "plummer", N: 1000, Workers: 1, Steps: 3, Dt: 1e-4, Policy: "auto",
				TotalMS: 50, Refits: 3, Migrants: 12,
				Samples: []obs.StepSample{
					{Step: 0, RefitKind: "build", WallNS: 2e6, EvalNS: 1e6, BudgetPred: 0.5, BudgetReal: 0.1, PlanRebuilt: 400, PlanCollectNS: 3e5},
					{Step: 1, RefitKind: "refit", WallNS: 1e6, EvalNS: 5e5, Migrants: 6, MigrantFrac: 0.006, BudgetPred: 0.25, BudgetReal: 0.05, PlanReused: 390, PlanRebuilt: 10, PlanReuse: 0.975, PlanCollectNS: 1e4},
					{Step: 2, RefitKind: "refit", WallNS: 1e6, EvalNS: 5e5, Migrants: 6, MigrantFrac: 0.006, BudgetPred: 0.25, BudgetReal: 0.05, PlanReused: 395, PlanRebuilt: 5, PlanReuse: 0.9875, PlanCollectNS: 5e3},
				},
				Rollup:  obs.SeriesRollup{Steps: 3, Builds: 1, Refits: 2},
				Journal: []obs.Event{{Step: 1, Kind: obs.EventDegreeClamp, Reason: "cap", Value: 2}},
				Plan: &benchfmt.StepPlan{EntriesReused: 785, EntriesRebuilt: 415, ReuseFrac: 0.6542,
					Invalidated: 15, TraversalNS: 315000, TraversalSavedNS: 585000},
			},
			{Dist: "plummer", N: 1000, Workers: 1, Steps: 2, Dt: 8e-4, Policy: "block",
				TotalMS: 80, Refits: 5, Migrants: 20,
				Rollup: obs.SeriesRollup{Steps: 2, Builds: 1, Refits: 1},
				Plan:   &benchfmt.StepPlan{EntriesReused: 500, EntriesRebuilt: 100, ReuseFrac: 0.8333},
				Block: &benchfmt.StepBlock{Rungs: 4, Eta: 1, MacroSteps: 2,
					Substeps: 10, ForceEvals: 2500, GlobalEvals: 10000, EvalReduction: 4.0,
					Occupancy: []int64{900, 60, 30, 10}, Promotions: 25, Demotions: 8,
					Staleness: 0.02, PhiDrift: 2e-6, PhiBudget: 1e-4, TrajDrift: 1e-5},
			},
		},
		StepPairs: []benchfmt.StepPair{
			{Dist: "plummer", N: 1000, Workers: 1, Steps: 3, Dt: 1e-4,
				ConstructSpeedup: 3, RefitPhiDrift: 1e-6, RefitPhiBound: 1e-4},
		},
	}
}

func TestDiffIdenticalDocumentsClean(t *testing.T) {
	if regs := diff(sampleDoc(), sampleDoc(), 1.75, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("identical documents regressed: %v", regs)
	}
}

func TestDiffCatchesWallTimeRegression(t *testing.T) {
	next := sampleDoc()
	next.Results[0].EvalMS *= 2 // injected 2x slowdown
	regs := diff(sampleDoc(), next, 1.75, 1.1, 1.25, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "wall time") {
		t.Fatalf("2x wall regression not caught: %v", regs)
	}
	// With wall checks disabled (cross-machine mode) it must pass.
	if regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("wallfactor 0 still flagged wall time: %v", regs)
	}
}

func TestDiffCatchesBudgetViolation(t *testing.T) {
	next := sampleDoc()
	next.StepPairs[0].RefitPhiDrift = 10 * next.StepPairs[0].RefitPhiBound
	// Budget violations gate even with wall checks disabled.
	regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "Theorem 2 budget") {
		t.Fatalf("budget violation not caught: %v", regs)
	}
}

func TestDiffCatchesCounterDrift(t *testing.T) {
	next := sampleDoc()
	next.Results[1].Terms += 1000
	next.Steps[0].Rebuilds = 1
	regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9)
	if len(regs) != 2 {
		t.Fatalf("want 2 counter regressions, got: %v", regs)
	}
	// Counters are machine-independent only for identical configurations:
	// a different seed must disable the exact checks instead of flagging.
	next.Seed = 43
	if regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("seed-mismatched diff still gated counters: %v", regs)
	}
}

func TestDiffCatchesPlanReuseRegression(t *testing.T) {
	next := sampleDoc()
	next.Steps[0].Plan.ReuseFrac = 0.30 // cache effectiveness collapsed
	regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "plan reuse") {
		t.Fatalf("plan reuse collapse not caught: %v", regs)
	}
	// A drop within the tolerance band must pass.
	next.Steps[0].Plan.ReuseFrac = sampleDoc().Steps[0].Plan.ReuseFrac / 1.05
	if regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("in-tolerance reuse drop flagged: %v", regs)
	}
	// planfactor 0 disables the gate entirely.
	next.Steps[0].Plan.ReuseFrac = 0
	if regs := diff(sampleDoc(), next, 0, 0, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("planfactor 0 still gated plan reuse: %v", regs)
	}
}

func TestDiffCatchesBlockEvalReductionRegression(t *testing.T) {
	next := sampleDoc()
	next.Steps[1].Block.EvalReduction = 1.5 // savings collapsed from 4.0x
	// Keep the deterministic schedule checks out of the way: the collapse
	// must be caught by the factor gate alone.
	next.Seed = 43
	regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "eval reduction") {
		t.Fatalf("eval reduction collapse not caught: %v", regs)
	}
	// A drop within the tolerance band must pass.
	next.Steps[1].Block.EvalReduction = 4.0 / 1.2
	if regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("in-tolerance reduction drop flagged: %v", regs)
	}
	// blockfactor 0 disables the gate entirely.
	next.Steps[1].Block.EvalReduction = 1.0
	if regs := diff(sampleDoc(), next, 0, 1.1, 0, 1e-9); len(regs) != 0 {
		t.Fatalf("blockfactor 0 still gated eval reduction: %v", regs)
	}
}

func TestDiffCatchesBlockScheduleDrift(t *testing.T) {
	next := sampleDoc()
	next.Steps[1].Block.ForceEvals += 100
	next.Steps[1].Block.Occupancy = []int64{890, 70, 30, 10}
	regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9)
	if len(regs) != 2 {
		t.Fatalf("want schedule + occupancy regressions, got: %v", regs)
	}
	if !strings.Contains(regs[0]+regs[1], "schedule drifted") || !strings.Contains(regs[0]+regs[1], "occupancy drifted") {
		t.Fatalf("unexpected regression set: %v", regs)
	}
	// The same drift under a different criterion prefactor is a
	// configuration change, not a regression: exact checks must skip.
	next.Steps[1].Block.Eta = 2
	if regs := diff(sampleDoc(), next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("eta-mismatched block cell still gated exactly: %v", regs)
	}
}

func TestDiffCatchesBlockBudgetViolation(t *testing.T) {
	next := sampleDoc()
	next.Steps[1].Block.PhiDrift = 10 * next.Steps[1].Block.PhiBudget
	// Like the step-pair budget, the block budget gates even when nothing
	// matches and all factor gates are off.
	next.Seed = 43
	regs := diff(sampleDoc(), next, 0, 0, 0, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "extended Theorem 2 budget") {
		t.Fatalf("block budget violation not caught: %v", regs)
	}
}

func TestDiffSkipsPlanGateOnV4Baseline(t *testing.T) {
	// A pre-v5 baseline has no plan section; the gate must skip, not flag
	// (and not dereference nil).
	base := sampleDoc()
	base.Schema = "treecode-bench/v4"
	base.Steps[0].Plan = nil
	next := sampleDoc()
	next.Steps[0].Plan.ReuseFrac = 0
	if regs := diff(base, next, 0, 1.1, 1.25, 1e-9); len(regs) != 0 {
		t.Fatalf("v4 baseline without plan section gated plan reuse: %v", regs)
	}
}

func TestDiffVacuousWhenNoCellsMatch(t *testing.T) {
	next := sampleDoc()
	for i := range next.Results {
		next.Results[i].N = 777
	}
	for i := range next.Steps {
		next.Steps[i].N = 777
	}
	next.StepPairs = nil
	regs := diff(sampleDoc(), next, 1.75, 1.1, 1.25, 1e-9)
	if len(regs) != 1 || !strings.Contains(regs[0], "vacuous") {
		t.Fatalf("empty intersection must fail loudly: %v", regs)
	}
}

func writeDoc(t *testing.T, d *benchfmt.Doc) string {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderBenchDocument(t *testing.T) {
	path := writeDoc(t, sampleDoc())
	out := filepath.Join(t.TempDir(), "report.txt")
	w, err := cliio.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(w, path); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report := string(raw)
	for _, want := range []string{
		"policy=auto", "refit", "budget_pred", "degree-clamp",
		"construct speedup 3.00x", "rollup: 3 steps (1 build, 2 refit, 0 full",
		"plan_reuse", "plan: reuse 0.6542 (785 reused, 415 rebuilt)",
		"block: 4 rungs (eta=1), 2500 evals over 10 substeps vs 10000 global (4.00x)",
		"occupancy [900 60 30 10]",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRenderObsSnapshot(t *testing.T) {
	c := obs.New()
	c.AddStepSample(obs.StepSample{RefitKind: "build", WallNS: 1e6, EvalNS: 5e5})
	c.AddEvent(obs.EventRebuildFallback, "migrant-fraction", 42)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteJSON(c, path); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "report.txt")
	w, err := cliio.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(w, path); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "rebuild-fallback") || !strings.Contains(string(raw), "build") {
		t.Fatalf("snapshot report incomplete:\n%s", raw)
	}
}

func TestReadDocRejectsV5MissingPlanSection(t *testing.T) {
	d := sampleDoc()
	d.Steps[0].Plan = nil
	path := writeDoc(t, d)
	_, err := benchfmt.ReadDoc(path)
	if err == nil || !strings.Contains(err.Error(), "missing the plan section") {
		t.Fatalf("v5 document without plan section accepted: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "policy=auto") {
		t.Fatalf("rejection does not identify the offending cell: %v", err)
	}
	// The same document tagged v4 must be accepted (older producers).
	d.Schema = "treecode-bench/v4"
	path = writeDoc(t, d)
	if _, err := benchfmt.ReadDoc(path); err != nil {
		t.Fatalf("v4 document without plan section rejected: %v", err)
	}
}

func TestReadDocRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := benchfmt.ReadDoc(path); err == nil {
		t.Fatal("foreign schema accepted as a bench document")
	}
}
