// Command obsreport analyzes benchmark-trajectory documents written by
// cmd/benchjson (and, for the render mode, obs snapshot traces written via
// -obsjson).
//
// Render mode (the default) turns one trace into human-readable per-step
// tables — one row per StepSample with the refit kind, migrant count,
// radius inflation, predicted vs realized Theorem 2 budget, and wall
// times — followed by the event journal and the whole-run rollups:
//
//	obsreport BENCH_treecode.json
//	obsreport -o report.txt trace.json
//
// Diff mode compares a new document against a baseline and exits nonzero
// on regression, so CI can gate on it:
//
//	obsreport -diff BENCH_treecode.json new.json
//
// Cells are matched exactly on their identifying coordinates (dist, n,
// workers, eval mode / policy); cells present in only one document are
// ignored, but at least one cell must match. Two families of checks run:
//
//   - Deterministic counters (interaction terms, M2P/P2P counts, direct
//     relative error, refit/rebuild counts) are machine-independent given
//     the same seed and configuration: they must match exactly (the
//     relative error within floating-point tolerance) whenever the two
//     documents' headers (seed, alpha, degree, method) agree.
//
//   - Wall-clock times are machine-dependent noise across hosts; the new
//     eval time may exceed the baseline by at most -wallfactor (default
//     1.75). Pass -wallfactor 0 to disable the wall check entirely, which
//     is the right setting when the two documents come from different
//     machines — CI diffs a fresh run against the checked-in baseline
//     this way and still catches counter drift and budget violations.
//
//   - Interaction-plan cache reuse (schema v5 steps cells) may regress
//     only within -planfactor: the new reuse fraction must stay above
//     base/-planfactor on every matched steps cell where both documents
//     carry plan data. Pre-v5 baselines carry none and skip the gate.
//
//   - Block-timestep cells (schema v6 steps cells carrying a block
//     section) gate on the force-evaluation reduction: the new
//     EvalReduction must stay above base/-blockfactor wherever both
//     documents carry block data. Under header identity and matching
//     (dt, rungs, eta) the scheme is fully deterministic, so the substep
//     count, force-evaluation count, and per-rung occupancy histogram
//     must additionally match exactly.
//
// Independently of cell matching, the new document's step pairs must stay
// within their Theorem 2 budget (RefitPhiDrift <= RefitPhiBound), and every
// new block cell's mixed-age phi drift within its extended budget
// (PhiDrift <= PhiBudget).
//
// Exit status: 0 clean, 1 regression found, 2 usage or read error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"treecode/internal/benchfmt"
	"treecode/internal/cliio"
	"treecode/internal/obs"
)

func main() {
	diffBase := flag.String("diff", "", "baseline document: compare FILE (new) against this and exit nonzero on regression")
	wallFactor := flag.Float64("wallfactor", 1.75, "max allowed new/base eval wall-time ratio in -diff mode (0 disables wall checks)")
	planFactor := flag.Float64("planfactor", 1.1, "max allowed base/new plan-reuse-fraction ratio in -diff mode (0 disables the plan gate)")
	blockFactor := flag.Float64("blockfactor", 1.25, "max allowed base/new block eval-reduction ratio in -diff mode (0 disables the block gate)")
	relTol := flag.Float64("reltol", 1e-9, "relative tolerance for deterministic float comparisons in -diff mode")
	out := flag.String("o", "", "render output file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsreport [-o report.txt] TRACE.json\n       obsreport -diff BASE.json [-wallfactor F] NEW.json")
		os.Exit(2)
	}
	if *diffBase != "" {
		base, err := benchfmt.ReadDoc(*diffBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(2)
		}
		next, err := benchfmt.ReadDoc(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(2)
		}
		regressions := diff(base, next, *wallFactor, *planFactor, *blockFactor, *relTol)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "obsreport: %d regression(s) against %s\n", len(regressions), *diffBase)
			os.Exit(1)
		}
		fmt.Printf("obsreport: %s matches %s within thresholds\n", flag.Arg(0), *diffBase)
		return
	}

	w, err := cliio.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(2)
	}
	if err := render(w, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(2)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(2)
	}
}

// ms renders nanoseconds as milliseconds.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

// renderSeries prints the per-step table, journal, and rollup summary of
// one step series.
func renderSeries(w *cliio.Output, samples []obs.StepSample, journal []obs.Event, roll obs.SeriesRollup) {
	fmt.Fprintf(w.W, "  %4s %-6s %9s %11s %9s %12s %12s %8s %8s %8s %10s %8s\n",
		"step", "kind", "migrants", "migr_frac", "inflate", "budget_pred", "budget_real", "wall_ms", "eval_ms", "steals", "plan_reuse", "plan_ms")
	for _, s := range samples {
		fmt.Fprintf(w.W, "  %4d %-6s %9d %11.4g %9.4g %12.5g %12.5g %8.2f %8.2f %8d %10.4f %8.2f\n",
			s.Step, s.RefitKind, s.Migrants, s.MigrantFrac, s.RadiusInflation,
			s.BudgetPred, s.BudgetReal, ms(s.WallNS), ms(s.EvalNS), s.Steals,
			s.PlanReuse, ms(s.PlanCollectNS))
	}
	if n := roll.Steps; n > 0 {
		fmt.Fprintf(w.W, "  rollup: %d steps (%d build, %d refit, %d full; %d evicted)\n",
			n, roll.Builds, roll.Refits, roll.Rebuilds, roll.Dropped)
		fmt.Fprintf(w.W, "  rollup: wall mean %.2f ms max %.2f ms, eval mean %.2f ms, migrants mean %.1f max %.0f\n",
			roll.Wall.Mean(n)/1e6, roll.Wall.Max/1e6, roll.Eval.Mean(n)/1e6,
			roll.Migrants.Mean(n), roll.Migrants.Max)
		fmt.Fprintf(w.W, "  rollup: budget_pred mean %.5g max %.5g, budget_real mean %.5g max %.5g\n",
			roll.BudgetPred.Mean(n), roll.BudgetPred.Max, roll.BudgetReal.Mean(n), roll.BudgetReal.Max)
		fmt.Fprintf(w.W, "  rollup: plan reuse mean %.4f, plan collect mean %.2f ms max %.2f ms\n",
			roll.PlanReuse.Mean(n), roll.PlanCollect.Mean(n)/1e6, roll.PlanCollect.Max/1e6)
	}
	for _, e := range journal {
		fmt.Fprintf(w.W, "  event t=%-12s step=%-4d %-18s value=%-10.4g %s\n",
			time.Duration(e.TimeNS).Round(time.Microsecond), e.Step, e.Kind, e.Value, e.Reason)
	}
}

// render pretty-prints one document: either a benchfmt benchmark document
// (per-steps-cell tables) or a raw obs snapshot (its embedded series).
func render(w *cliio.Output, path string) error {
	if d, err := benchfmt.ReadDoc(path); err == nil {
		fmt.Fprintf(w.W, "%s: %s  method=%s alpha=%v degree=%d seed=%d  go=%s procs=%d\n",
			path, d.Schema, d.Method, d.Alpha, d.Degree, d.Seed, d.Go, d.GOMAXPROCS)
		for i := range d.Steps {
			s := &d.Steps[i]
			fmt.Fprintf(w.W, "\nsteps %s n=%d workers=%d policy=%s (%d steps, dt=%v): construct %.1f ms, moments %.1f ms, total %.1f ms\n",
				s.Dist, s.N, s.Workers, s.Policy, s.Steps, s.Dt, s.ConstructMS, s.MomentsMS, s.TotalMS)
			if p := s.Plan; p != nil {
				fmt.Fprintf(w.W, "  plan: reuse %.4f (%d reused, %d rebuilt), %d invalidated, %d drops, traversal %.1f ms (saved %.1f ms)\n",
					p.ReuseFrac, p.EntriesReused, p.EntriesRebuilt, p.Invalidated, p.Drops,
					ms(p.TraversalNS), ms(p.TraversalSavedNS))
			}
			if b := s.Block; b != nil {
				fmt.Fprintf(w.W, "  block: %d rungs (eta=%g), %d evals over %d substeps vs %d global (%.2fx), occupancy %v\n",
					b.Rungs, b.Eta, b.ForceEvals, b.Substeps, b.GlobalEvals, b.EvalReduction, b.Occupancy)
				fmt.Fprintf(w.W, "  block: phi drift %.3g (budget %.3g), traj drift %.3g, %d promotions, %d demotions, staleness %.3g\n",
					b.PhiDrift, b.PhiBudget, b.TrajDrift, b.Promotions, b.Demotions, b.Staleness)
			}
			renderSeries(w, s.Samples, s.Journal, s.Rollup)
		}
		for _, p := range d.StepPairs {
			fmt.Fprintf(w.W, "\npair %s n=%d workers=%d: construct speedup %.2fx, phi drift %.3g (budget %.3g), traj drift %.3g\n",
				p.Dist, p.N, p.Workers, p.ConstructSpeedup, p.RefitPhiDrift, p.RefitPhiBound, p.TrajDrift)
		}
		return nil
	}
	// Not a benchmark document — try an obs snapshot trace (-obsjson).
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	snap, err := decodeSnapshot(raw)
	if err != nil {
		return fmt.Errorf("%s: neither a treecode-bench document nor an obs snapshot: %w", path, err)
	}
	fmt.Fprintf(w.W, "%s: %s obs snapshot\n", path, snap.Schema)
	renderSeries(w, snap.Series.Samples, snap.Journal.Events, snap.Series.Rollup)
	return nil
}

// decodeSnapshot parses an obs snapshot trace, insisting on its schema tag
// so arbitrary JSON is rejected.
func decodeSnapshot(raw []byte) (*obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(snap.Schema, "treecode-obs/") {
		return nil, fmt.Errorf("schema %q is not a treecode-obs snapshot", snap.Schema)
	}
	return &snap, nil
}

// cellKey identifies one comparable benchmark cell across documents.
type cellKey struct {
	section string // "result" or "steps"
	dist    string
	n       int
	workers int
	mode    string // eval mode or rebuild policy
}

func (k cellKey) String() string {
	return fmt.Sprintf("%s[%s n=%d workers=%d %s]", k.section, k.dist, k.n, k.workers, k.mode)
}

// diff compares next against base and returns the regressions found.
// Deterministic counters gate exactly when the documents' headers agree;
// wall times gate by factor (0 disables); plan reuse fractions may only
// regress within planFactor on matched steps cells where both documents
// carry plan data (pre-v5 baselines skip the gate); block eval reductions
// may only regress within blockFactor where both documents carry block
// data, with exact substep/eval/occupancy checks under full configuration
// identity; budget violations in next gate unconditionally.
func diff(base, next *benchfmt.Doc, wallFactor, planFactor, blockFactor, relTol float64) []string {
	var regs []string
	deterministic := base.Seed == next.Seed && base.Alpha == next.Alpha && //lint:ignore floatcmp header identity, not arithmetic: counters are comparable only under bit-identical configuration
		base.Degree == next.Degree && base.Method == next.Method

	baseResults := map[cellKey]benchfmt.Result{}
	for _, r := range base.Results {
		baseResults[cellKey{"result", r.Dist, r.N, r.Workers, r.Mode}] = r
	}
	matched := 0
	for _, r := range next.Results {
		b, ok := baseResults[cellKey{"result", r.Dist, r.N, r.Workers, r.Mode}]
		if !ok {
			continue
		}
		matched++
		k := cellKey{"result", r.Dist, r.N, r.Workers, r.Mode}
		if deterministic {
			if r.Terms != b.Terms || r.PC != b.PC || r.PP != b.PP {
				regs = append(regs, fmt.Sprintf("%s: interaction counters drifted: terms %d->%d pc %d->%d pp %d->%d",
					k, b.Terms, r.Terms, b.PC, r.PC, b.PP, r.PP))
			}
			if r.MaxDegree != b.MaxDegree {
				regs = append(regs, fmt.Sprintf("%s: max degree %d->%d", k, b.MaxDegree, r.MaxDegree))
			}
			if !closeRel(r.BoundSum, b.BoundSum, relTol) {
				regs = append(regs, fmt.Sprintf("%s: Theorem 2 bound sum drifted %v -> %v", k, b.BoundSum, r.BoundSum))
			}
			if r.RelErrDirect != nil && b.RelErrDirect != nil && !closeRel(*r.RelErrDirect, *b.RelErrDirect, relTol) {
				regs = append(regs, fmt.Sprintf("%s: direct relative error drifted %v -> %v", k, *b.RelErrDirect, *r.RelErrDirect))
			}
		}
		if wallFactor > 0 && b.EvalMS > 0 && r.EvalMS > b.EvalMS*wallFactor {
			regs = append(regs, fmt.Sprintf("%s: eval wall time %.2f ms exceeds %.2f x baseline %.2f ms",
				k, r.EvalMS, wallFactor, b.EvalMS))
		}
	}

	baseSteps := map[cellKey]benchfmt.StepResult{}
	for _, s := range base.Steps {
		baseSteps[cellKey{"steps", s.Dist, s.N, s.Workers, s.Policy}] = s
	}
	for _, s := range next.Steps {
		b, ok := baseSteps[cellKey{"steps", s.Dist, s.N, s.Workers, s.Policy}]
		if !ok || s.Steps != b.Steps {
			continue
		}
		matched++
		k := cellKey{"steps", s.Dist, s.N, s.Workers, s.Policy}
		if deterministic && s.Dt == b.Dt { //lint:ignore floatcmp configuration identity: a different timestep invalidates exact counter comparison entirely
			if s.Refits != b.Refits || s.Rebuilds != b.Rebuilds || s.Migrants != b.Migrants {
				regs = append(regs, fmt.Sprintf("%s: maintenance counters drifted: refits %d->%d rebuilds %d->%d migrants %d->%d",
					k, b.Refits, s.Refits, b.Rebuilds, s.Rebuilds, b.Migrants, s.Migrants))
			}
		}
		if wallFactor > 0 && b.TotalMS > 0 && s.TotalMS > b.TotalMS*wallFactor {
			regs = append(regs, fmt.Sprintf("%s: total wall time %.2f ms exceeds %.2f x baseline %.2f ms",
				k, s.TotalMS, wallFactor, b.TotalMS))
		}
		if planFactor > 0 && b.Plan != nil && s.Plan != nil && b.Plan.ReuseFrac > 0 {
			if s.Plan.ReuseFrac < b.Plan.ReuseFrac/planFactor {
				regs = append(regs, fmt.Sprintf("%s: plan reuse fraction %.4f fell below baseline %.4f / %.2f",
					k, s.Plan.ReuseFrac, b.Plan.ReuseFrac, planFactor))
			}
		}
		if bb, sb := b.Block, s.Block; bb != nil && sb != nil {
			if blockFactor > 0 && bb.EvalReduction > 0 && sb.EvalReduction < bb.EvalReduction/blockFactor { //lint:ignore nanflow blockFactor > 0 is checked first in the same condition
				regs = append(regs, fmt.Sprintf("%s: block eval reduction %.2fx fell below baseline %.2fx / %.2f",
					k, sb.EvalReduction, bb.EvalReduction, blockFactor))
			}
			// Under full configuration identity the block schedule is
			// deterministic: the same particles land on the same rungs and
			// the same substeps run, so the counters must match exactly.
			if deterministic && s.Dt == b.Dt && //lint:ignore floatcmp configuration identity, not arithmetic
				sb.Rungs == bb.Rungs && sb.Eta == bb.Eta && sb.MacroSteps == bb.MacroSteps { //lint:ignore floatcmp configuration identity, not arithmetic
				if sb.Substeps != bb.Substeps || sb.ForceEvals != bb.ForceEvals {
					regs = append(regs, fmt.Sprintf("%s: block schedule drifted: substeps %d->%d force evals %d->%d",
						k, bb.Substeps, sb.Substeps, bb.ForceEvals, sb.ForceEvals))
				}
				if !equalOccupancy(sb.Occupancy, bb.Occupancy) {
					regs = append(regs, fmt.Sprintf("%s: rung occupancy drifted %v -> %v", k, bb.Occupancy, sb.Occupancy))
				}
			}
		}
	}

	// Budget violations in the new document regress regardless of matching.
	for _, p := range next.StepPairs {
		if p.RefitPhiDrift > p.RefitPhiBound {
			regs = append(regs, fmt.Sprintf("step pair %s n=%d workers=%d: refit phi drift %v exceeds Theorem 2 budget %v",
				p.Dist, p.N, p.Workers, p.RefitPhiDrift, p.RefitPhiBound))
		}
	}
	for _, s := range next.Steps {
		if s.Block != nil && s.Block.PhiDrift > s.Block.PhiBudget {
			regs = append(regs, fmt.Sprintf("steps[%s n=%d workers=%d %s]: block phi drift %v exceeds extended Theorem 2 budget %v",
				s.Dist, s.N, s.Workers, s.Policy, s.Block.PhiDrift, s.Block.PhiBudget))
		}
	}

	if matched == 0 {
		regs = append(regs, fmt.Sprintf("no comparable cells between the documents (%d base results, %d new results) — diff is vacuous",
			len(base.Results), len(next.Results)))
	}
	sort.Strings(regs)
	return regs
}

// equalOccupancy reports whether two per-rung histograms are identical.
func equalOccupancy(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// closeRel reports a == b within relative tolerance (absolute near zero).
func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}
