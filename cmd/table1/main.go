// Command table1 reproduces Table 1 of the paper: for structured (uniform)
// and unstructured (Gaussian, overlapped-Gaussian) distributions of growing
// size, it compares the original fixed-degree Barnes-Hut method with the
// improved adaptive-degree method on simulation error and on the number of
// multipole term evaluations (the paper's serial cost metric).
//
// Particles carry unit charges (uniform charge density, the paper's protein
// scenario), so the total charge grows with n: the original method's
// per-point absolute error grows roughly linearly with n while the improved
// method's grows like log n — the paper's headline result. The relative
// 2-norm error of the paper's error definition is reported alongside.
//
// The error reference is direct summation; above -exactmax particles the
// reference is evaluated at a random sample of -sample targets, which keeps
// the driver laptop-sized while preserving the error growth shape.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/obs"
	"treecode/internal/points"
	"treecode/internal/stats"
)

func main() {
	dists := flag.String("dist", "uniform,gaussian,multigauss", "comma-separated distributions")
	sizes := flag.String("sizes", "20000,40000,80000,160000", "comma-separated particle counts")
	degree := flag.Int("degree", 4, "fixed degree / adaptive minimum degree")
	alpha := flag.Float64("alpha", 0.5, "acceptance parameter")
	seed := flag.Int64("seed", 1, "workload seed")
	sample := flag.Int("sample", 2000, "reference sample size for large n")
	exactMax := flag.Int("exactmax", 20000, "largest n for full direct reference")
	refq := flag.Float64("refq", 0, "Theorem 3 reference-cluster quantile (0 = theorem's minimum)")
	obsJSON := flag.String("obsjson", "", "write the obs trace as JSON to FILE (- for stdout)")
	flag.Parse()

	if err := (core.Config{Degree: *degree, Alpha: *alpha, RefQuantile: *refq}).Validate(); err != nil {
		fmt.Println(err)
		return
	}
	var col *obs.Collector // nil keeps the evaluators uninstrumented
	if *obsJSON != "" {
		col = obs.New()
	}

	for _, d := range strings.Split(*dists, ",") {
		dist := points.Distribution(strings.TrimSpace(d))
		fmt.Printf("== Table 1: %s distribution (degree %d, alpha %g, unit charges) ==\n",
			dist, *degree, *alpha)
		tb := stats.NewTable("n", "abserr(orig)", "abserr(new)", "relerr(orig)", "relerr(new)",
			"Terms(orig)", "Terms(new)", "ratio")
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Println("bad size:", s)
				continue
			}
			r, err := runCase(dist, n, *degree, *alpha, *seed, *sample, *exactMax, *refq, col)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			tb.AddRow(n, r.absO, r.absA, r.relO, r.relA,
				stats.FormatCount(r.termsO), stats.FormatCount(r.termsA),
				float64(r.termsA)/float64(r.termsO))
		}
		fmt.Println(tb)
	}
	if *obsJSON != "" {
		if err := obs.WriteJSON(col, *obsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "table1: writing obs trace:", err)
			os.Exit(1)
		}
	}
}

type result struct {
	absO, absA, relO, relA float64
	termsO, termsA         int64
}

func runCase(dist points.Distribution, n, degree int, alpha float64, seed int64, sample, exactMax int, refq float64, col *obs.Collector) (*result, error) {
	// Unit charge per particle: total charge n (uniform charge density).
	set, err := points.GenerateCharged(dist, n, seed, float64(n), false)
	if err != nil {
		return nil, err
	}
	orig, err := core.New(set, core.Config{Method: core.Original, Degree: degree, Alpha: alpha, Obs: col})
	if err != nil {
		return nil, err
	}
	phiO, stO := orig.Potentials()
	adpt, err := core.New(set, core.Config{Method: core.Adaptive, Degree: degree, Alpha: alpha, RefQuantile: refq, Obs: col})
	if err != nil {
		return nil, err
	}
	phiA, stA := adpt.Potentials()

	r := &result{termsO: stO.Terms, termsA: stA.Terms}
	if n <= exactMax {
		exact := direct.SelfPotentials(set, 0)
		r.relO = stats.RelErr2(phiO, exact)
		r.relA = stats.RelErr2(phiA, exact)
		r.absO = stats.MeanAbsErr(phiO, exact)
		r.absA = stats.MeanAbsErr(phiA, exact)
		return r, nil
	}
	// Sampled reference.
	rng := rand.New(rand.NewSource(seed + 7))
	idx := rng.Perm(n)[:sample]
	var numO, numA, den, sumO, sumA float64
	for _, i := range idx {
		xi := set.Particles[i].Pos
		var exact float64
		for j, pj := range set.Particles {
			if j == i {
				continue
			}
			exact += pj.Charge / xi.Dist(pj.Pos)
		}
		dO := phiO[i] - exact
		dA := phiA[i] - exact
		numO += dO * dO
		numA += dA * dA
		den += exact * exact
		sumO += math.Abs(dO)
		sumA += math.Abs(dA)
	}
	r.relO = math.Sqrt(numO / den)
	r.relA = math.Sqrt(numA / den)
	r.absO = sumO / float64(sample)
	r.absA = sumA / float64(sample)
	return r, nil
}
