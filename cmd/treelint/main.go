// Command treelint runs the repository's static-analysis suite
// (internal/lint) over the requested packages and reports findings as
//
//	file:line:col: [rule] message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. Suppressions (`//lint:ignore <rule> <reason>`)
// are honored and counted in the summary. With -json the findings and
// suppression counts are emitted as a single JSON object on stdout;
// with -sarif FILE a SARIF 2.1.0 log is additionally written for CI
// code-scanning upload.
//
// With -diff BASE the package arguments are replaced by the packages
// containing Go files changed since the git ref BASE — the fast PR mode;
// the full ./... sweep stays on main.
//
// With -baseline FILE, findings recorded in the baseline are reported
// separately and do not affect the exit status — only NEW findings fail
// the run. -writebaseline FILE records the current findings as that
// baseline (exit 0).
//
// With -fix, findings that carry a machine-suggested edit are applied to
// the source in place; the run then exits as if those findings were
// absent (re-run to confirm).
//
// Usage:
//
//	go run ./cmd/treelint ./...
//	go run ./cmd/treelint -json ./internal/core ./internal/fmm
//	go run ./cmd/treelint -diff origin/main
//	go run ./cmd/treelint -sarif treelint.sarif -baseline lint-baseline.json ./...
//	go run ./cmd/treelint -fix ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"treecode/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	diffBase := flag.String("diff", "", "lint only packages with Go files changed since this git ref (overrides package arguments)")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	baseline := flag.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
	writeBaseline := flag.String("writebaseline", "", "record current findings as a baseline file and exit 0")
	fix := flag.Bool("fix", false, "apply machine-suggested fixes in place")
	flag.Usage = func() {
		var b strings.Builder
		fmt.Fprintf(&b, "usage: treelint [-json] [-rules r1,r2] [-diff ref] [-sarif file] [-baseline file] [-writebaseline file] [-fix] [packages]\n\nRules:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(&b, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprint(os.Stderr, b.String())
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	var dirs []string
	if *diffBase != "" {
		dirs, err = lint.ChangedGoDirs(cwd, *diffBase)
	} else {
		dirs, err = lint.ExpandPatterns(cwd, patterns)
	}
	if err != nil {
		fatal(err)
	}
	sum, err := lint.LintDirs(cwd, dirs, analyzers)
	if err != nil {
		fatal(err)
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, sum.Findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "treelint: wrote %d findings to %s\n", len(sum.Findings), *writeBaseline)
		return
	}

	// The SARIF log carries the complete finding set (including
	// baselined ones): code-scanning consumers do their own new/known
	// bookkeeping and want the full picture.
	if *sarifOut != "" {
		f, err := os.Create(*sarifOut)
		if err != nil {
			fatal(err)
		}
		err = lint.WriteSARIF(f, sum.Findings, analyzers)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}

	gating := sum.Findings
	if *baseline != "" {
		b, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		var known []lint.Finding
		gating, known = b.Filter(sum.Findings)
		if len(known) > 0 && !*jsonOut {
			fmt.Fprintf(os.Stderr, "treelint: %d baselined findings suppressed (%s)\n", len(known), *baseline)
		}
	}

	if *fix {
		applied, err := lint.ApplyFixes(gating)
		if err != nil {
			fatal(err)
		}
		var fixed int
		for file, n := range applied {
			fixed += n
			fmt.Fprintf(os.Stderr, "treelint: %s: applied %d fixes\n", file, n)
		}
		// Fixed findings no longer gate; unfixable ones still do.
		var rest []lint.Finding
		for _, f := range gating {
			if f.Fix == nil {
				rest = append(rest, f)
			}
		}
		if fixed > 0 {
			fmt.Fprintln(os.Stderr, "treelint: re-run to verify fixed files")
		}
		gating = rest
	}

	if *jsonOut {
		out := struct {
			*lint.Summary
			New []lint.Finding `json:"new,omitempty"`
		}{Summary: sum}
		if *baseline != "" {
			out.New = gating
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range gating {
			fmt.Println(f)
		}
		fmt.Fprintln(os.Stderr, sum)
	}
	if len(gating) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treelint:", err)
	os.Exit(2)
}

func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, r := range strings.Split(rules, ",") {
		if r = strings.TrimSpace(r); r == "" {
			continue
		}
		a, ok := byName[r]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", r)
		}
		out = append(out, a)
	}
	return out, nil
}
