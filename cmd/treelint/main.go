// Command treelint runs the repository's static-analysis suite
// (internal/lint) over the requested packages and reports findings as
//
//	file:line:col: [rule] message
//
// It exits 0 when the tree is clean, 1 when there are findings, and 2 on
// usage or load errors. Suppressions (`//lint:ignore <rule> <reason>`)
// are honored and counted in the summary. With -json the findings and
// suppression counts are emitted as a single JSON object on stdout.
//
// With -diff BASE the package arguments are replaced by the packages
// containing Go files changed since the git ref BASE — the fast PR mode;
// the full ./... sweep stays on main.
//
// Usage:
//
//	go run ./cmd/treelint ./...
//	go run ./cmd/treelint -json ./internal/core ./internal/fmm
//	go run ./cmd/treelint -diff origin/main
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"treecode/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	diffBase := flag.String("diff", "", "lint only packages with Go files changed since this git ref (overrides package arguments)")
	flag.Usage = func() {
		var b strings.Builder
		fmt.Fprintf(&b, "usage: treelint [-json] [-rules r1,r2] [-diff ref] [packages]\n\nRules:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(&b, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprint(os.Stderr, b.String())
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelint:", err)
		os.Exit(2)
	}
	var dirs []string
	if *diffBase != "" {
		dirs, err = lint.ChangedGoDirs(cwd, *diffBase)
	} else {
		dirs, err = lint.ExpandPatterns(cwd, patterns)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelint:", err)
		os.Exit(2)
	}
	sum, err := lint.LintDirs(cwd, dirs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treelint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintln(os.Stderr, "treelint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range sum.Findings {
			fmt.Println(f)
		}
		fmt.Fprintln(os.Stderr, sum)
	}
	if len(sum.Findings) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, r := range strings.Split(rules, ",") {
		if r = strings.TrimSpace(r); r == "" {
			continue
		}
		a, ok := byName[r]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", r)
		}
		out = append(out, a)
	}
	return out, nil
}
