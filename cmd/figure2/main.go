// Command figure2 reproduces Figure 2 of the paper: the error and the
// computational cost (multipole terms evaluated) of the original and
// improved methods as the problem size grows, emitted as CSV series ready
// for plotting. The left panel of the paper's figure is (n, error) for both
// methods; the right panel is (n, terms). Unit charges per particle
// (uniform charge density) make the original method's error grow with n.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"treecode/internal/cliio"
	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/obs"
	"treecode/internal/points"
	"treecode/internal/stats"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution")
	sizes := flag.String("sizes", "5000,10000,20000,40000,80000,160000", "comma-separated particle counts")
	degree := flag.Int("degree", 4, "fixed degree / adaptive minimum degree")
	alpha := flag.Float64("alpha", 0.5, "acceptance parameter")
	seed := flag.Int64("seed", 1, "workload seed")
	sample := flag.Int("sample", 2000, "reference sample size for large n")
	exactMax := flag.Int("exactmax", 20000, "largest n for full direct reference")
	out := flag.String("o", "", "output file (default stdout)")
	obsJSON := flag.String("obsjson", "", "write the obs trace as JSON to FILE (- for stdout)")
	flag.Parse()

	if err := (core.Config{Degree: *degree, Alpha: *alpha}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var col *obs.Collector // nil keeps the evaluators uninstrumented
	if *obsJSON != "" {
		col = obs.New()
	}

	w, werr := cliio.Create(*out)
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}

	fmt.Fprintln(w.W, "n,abserr_original,abserr_adaptive,terms_original,terms_adaptive")
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad size:", s)
			continue
		}
		set, err := points.GenerateCharged(points.Distribution(*dist), n, *seed, float64(n), false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		errO, termsO := run(set, core.Original, *degree, *alpha, *sample, *exactMax, *seed, col)
		errA, termsA := run(set, core.Adaptive, *degree, *alpha, *sample, *exactMax, *seed, col)
		fmt.Fprintf(w.W, "%d,%s,%s,%d,%d\n", n,
			stats.FormatFloat(errO), stats.FormatFloat(errA), termsO, termsA)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "figure2: writing %s: %v\n", w.Name(), err)
		os.Exit(1)
	}
	if *obsJSON != "" {
		if err := obs.WriteJSON(col, *obsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "figure2: writing obs trace: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(set *points.Set, method core.Method, degree int, alpha float64, sample, exactMax int, seed int64, col *obs.Collector) (float64, int64) {
	e, err := core.New(set, core.Config{Method: method, Degree: degree, Alpha: alpha, Obs: col})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	phi, st := e.Potentials()
	n := set.N()
	if n <= exactMax {
		return stats.MeanAbsErr(phi, direct.SelfPotentials(set, 0)), st.Terms
	}
	rng := rand.New(rand.NewSource(seed + 7))
	idx := rng.Perm(n)[:sample]
	var sum float64
	for _, i := range idx {
		xi := set.Particles[i].Pos
		var exact float64
		for j, pj := range set.Particles {
			if j == i {
				continue
			}
			exact += pj.Charge / xi.Dist(pj.Pos)
		}
		sum += math.Abs(phi[i] - exact)
	}
	return sum / float64(sample), st.Terms
}
