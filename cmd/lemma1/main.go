// Command lemma1 validates the geometric content of the paper's Figure 1
// and Lemmas 1-2 empirically: for real treecode traversals it measures the
// distance-to-size ratio d/s of every accepted interaction (Lemma 1 bounds
// it to a fixed annulus) and the number of same-size interactions per
// particle (Lemma 2 bounds it by the constant K(alpha)).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"treecode/internal/bounds"
	"treecode/internal/core"
	"treecode/internal/mac"
	"treecode/internal/obs"
	"treecode/internal/points"
	"treecode/internal/stats"
	"treecode/internal/tree"
)

func main() {
	n := flag.Int("n", 20000, "particles")
	dist := flag.String("dist", "uniform", "distribution")
	alphas := flag.String("alphas", "0.3,0.5,0.7", "comma-separated alpha values")
	seed := flag.Int64("seed", 1, "seed")
	obsJSON := flag.String("obsjson", "", "write the obs trace as JSON to FILE (- for stdout)")
	flag.Parse()

	var col *obs.Collector // nil keeps the evaluators uninstrumented
	if *obsJSON != "" {
		col = obs.New()
	}

	alphaList := splitFloats(*alphas)
	for _, alpha := range alphaList {
		if err := (core.Config{Degree: 2, Alpha: alpha}).Validate(); err != nil {
			fmt.Println(err)
			return
		}
	}

	set, err := points.Generate(points.Distribution(*dist), *n, *seed)
	if err != nil {
		fmt.Println(err)
		return
	}

	tb := stats.NewTable("alpha", "d/s min", "d/s max", "Lemma1 lo", "Lemma1 hi",
		"maxPerSize", "K(alpha)")
	for _, alpha := range alphaList {
		e, err := core.New(set, core.Config{
			Degree: 2, Alpha: alpha, MAC: mac.BoxAlpha{Alpha: alpha}, Obs: col,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		tr := e.Tree
		minRatio, maxRatio := math.Inf(1), 0.0
		maxPerSize := 0
		for ti := 0; ti < len(tr.Pos); ti += 97 {
			x := tr.Pos[ti]
			perLevel := map[int]int{}
			e.VisitInteractions(x, ti, func(nd *tree.Node, _ int) {
				if nd == tr.Root {
					return
				}
				//lint:ignore nanflow node cell sizes are halved from a positive root extent and never reach zero
				r := x.Dist(nd.Center) / nd.Size()
				if r < minRatio {
					minRatio = r
				}
				if r > maxRatio {
					maxRatio = r
				}
				perLevel[nd.Level]++
			}, nil)
			for _, c := range perLevel {
				if c > maxPerSize {
					maxPerSize = c
				}
			}
		}
		lo, hi := bounds.DistanceRatioChargeCenter(alpha)
		tb.AddRow(alpha, minRatio, maxRatio, lo, hi, maxPerSize,
			bounds.MaxInteractionsPerSize(alpha))
	}
	fmt.Println("== Figure 1 / Lemmas 1-2: empirical interaction geometry ==")
	fmt.Println("(d/s ratios must lie within [lo, hi]; per-size counts below K)")
	fmt.Println(tb)
	if *obsJSON != "" {
		if err := obs.WriteJSON(col, *obsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "lemma1: writing obs trace:", err)
			os.Exit(1)
		}
	}
}

func splitFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		if v, err := strconv.ParseFloat(strings.TrimSpace(f), 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}
