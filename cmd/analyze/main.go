// Command analyze prints the interaction profile of a treecode run: the
// per-level breakdown of cluster interactions, degrees, term counts, and
// error-bound contributions that the paper's aggregate analysis predicts.
// Comparing -method original with -method adaptive makes the mechanism
// visible: the original concentrates its error bound in the top levels
// (large net charge), the adaptive spends extra terms exactly there to
// flatten the bound across levels.
package main

import (
	"flag"
	"fmt"
	"os"

	"treecode/internal/analyze"
	"treecode/internal/core"
	"treecode/internal/points"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution")
	n := flag.Int("n", 20000, "particles")
	method := flag.String("method", "adaptive", "original|adaptive")
	degree := flag.Int("degree", 4, "degree / adaptive minimum")
	alpha := flag.Float64("alpha", 0.5, "acceptance parameter")
	stride := flag.Int("stride", 37, "profile every stride-th particle")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	m := core.Original
	if *method == "adaptive" {
		m = core.Adaptive
	}
	cfg := core.Config{Method: m, Degree: *degree, Alpha: *alpha}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	set, err := points.GenerateCharged(points.Distribution(*dist), *n, *seed, float64(*n), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e, err := core.New(set, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum := analyze.Summarize(e)
	fmt.Printf("%s treecode on %s n=%d: height %d, %d nodes (%d leaves), per level %v\n",
		m, *dist, *n, sum.Height, sum.Nodes, sum.Leaves, sum.NodesPer)
	fmt.Printf("root |charge| %.3g, min leaf |charge| %.3g\n\n", sum.ChargeTop, sum.MinLeafA)
	fmt.Println(analyze.Interactions(e, *stride))
}
