// Command analyze prints the interaction profile of a treecode run: the
// per-level breakdown of cluster interactions, degrees, term counts, and
// error-bound contributions that the paper's aggregate analysis predicts.
// Comparing -method original with -method adaptive makes the mechanism
// visible: the original concentrates its error bound in the top levels
// (large net charge), the adaptive spends extra terms exactly there to
// flatten the bound across levels.
//
// With -obs the run is instrumented: the per-level MAC census (accepts,
// rejects, opening ratios), the degree histogram, the Theorem 2 predicted
// error budget per level against the realized truncation error, the
// end-to-end error against the direct O(n^2) sum, and the phase-span tree
// are all printed; -obsjson FILE additionally exports the raw trace and
// -obsaddr serves the live snapshot, /metrics, expvar, and pprof.
package main

import (
	"flag"
	"fmt"
	"os"

	"treecode/internal/analyze"
	"treecode/internal/cliio"
	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/points"
	"treecode/internal/stats"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution")
	n := flag.Int("n", 20000, "particles")
	method := flag.String("method", "adaptive", "original|adaptive")
	eval := flag.String("eval", "walk", "evaluation mode: walk|batched")
	degree := flag.Int("degree", 4, "degree / adaptive minimum")
	alpha := flag.Float64("alpha", 0.5, "acceptance parameter")
	stride := flag.Int("stride", 37, "profile every stride-th particle")
	seed := flag.Int64("seed", 1, "seed")
	obsOn := flag.Bool("obs", false, "instrument the run: MAC census, error budget, span tree")
	ob := cliio.ObsFlagVars()
	flag.Parse()

	m := core.Original
	if *method == "adaptive" {
		m = core.Adaptive
	}
	ev, err := core.ParseEvalMode(*eval)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := core.Config{Method: m, Eval: ev, Degree: *degree, Alpha: *alpha}
	ob.Force = *obsOn // -obs prints the census even without an export flag
	col, err := ob.Start("treecode.analyze")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.Obs = col
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	set, err := points.GenerateCharged(points.Distribution(*dist), *n, *seed, float64(*n), false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e, err := core.New(set, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum := analyze.Summarize(e)
	fmt.Printf("%s treecode on %s n=%d: height %d, %d nodes (%d leaves), per level %v\n",
		m, *dist, *n, sum.Height, sum.Nodes, sum.Leaves, sum.NodesPer)
	fmt.Printf("root |charge| %.3g, min leaf |charge| %.3g\n\n", sum.ChargeTop, sum.MinLeafA)
	fmt.Println(analyze.Interactions(e, *stride))

	if col == nil {
		return
	}

	// The instrumented full evaluation populates the MAC census and spans;
	// the direct sum gives the realized end-to-end error.
	phi, _ := e.Potentials()
	exact := direct.SelfPotentials(set, 0)
	fmt.Printf("realized error vs direct sum: relative %s, max abs %s\n\n",
		stats.FormatFloat(stats.RelErr2(phi, exact)),
		stats.FormatFloat(stats.MaxAbsErr(phi, exact)))

	mtr := col.Metrics()
	fmt.Printf("MAC census (full evaluation, %d targets): %d accepts, %d rejects, %d direct pairs\n",
		len(phi), mtr.Accepts(), mtr.Rejects(), mtr.PPPairs())
	fmt.Printf("opening ratio a/r over accepts: min %.3g mean %.3g max %.3g\n",
		mtr.OpenRatio.Min, mtr.OpenRatio.Mean(), mtr.OpenRatio.Max)
	if mtr.DegreeClamps > 0 {
		fmt.Printf("degree selections clamped at the Legendre stability cap: %d\n", mtr.DegreeClamps)
	}
	tb := stats.NewTable("level", "accepts", "rejects", "M2P terms", "PP pairs", "Thm2 budget")
	for lvl, lm := range mtr.Levels {
		if lm.Accepts == 0 && lm.Rejects == 0 && lm.PPPairs == 0 {
			continue
		}
		tb.AddRow(lvl, lm.Accepts, lm.Rejects, lm.M2PTerms, lm.PPPairs,
			fmt.Sprintf("%.3e", lm.Budget))
	}
	fmt.Println(tb)

	fmt.Print("degree histogram (accepted interactions): ")
	for p, c := range mtr.DegreeHist {
		if c > 0 {
			fmt.Printf("p%d:%d ", p, c)
		}
	}
	fmt.Print("\n\n")

	fmt.Println(analyze.ErrorBudget(e, *stride))

	fmt.Println("phase spans:")
	fmt.Print(col.RenderSpans())

	if err := ob.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "analyze: writing obs trace: %v\n", err)
		os.Exit(1)
	}
}
