// Command bemsolve demonstrates the paper's boundary-element application
// end to end: it discretizes the single-layer operator on a chosen surface,
// solves V*sigma = g with GMRES(10) using treecode matrix-vector products,
// and reports convergence (for the sphere, it also checks the analytic
// capacitance C = R).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"treecode/internal/bem"
	"treecode/internal/cliio"
	"treecode/internal/core"
	"treecode/internal/krylov"
	"treecode/internal/mesh"
	"treecode/internal/stats"
	"treecode/internal/vec"
)

func main() {
	surface := flag.String("surface", "sphere", "sphere|propeller|gripper")
	density := flag.Int("density", 2, "mesh density (sphere: subdivision level)")
	degree := flag.Int("degree", 6, "adaptive minimum degree")
	alpha := flag.Float64("alpha", 0.4, "acceptance parameter")
	quad := flag.Int("quad", 6, "Gauss points per element")
	tol := flag.Float64("tol", 1e-6, "GMRES relative residual target")
	restart := flag.Int("restart", 10, "GMRES restart (paper: 10)")
	precond := flag.Bool("precond", false, "use the near-field block-Jacobi preconditioner")
	blockSize := flag.Int("block", 48, "preconditioner block size")
	evalStr := flag.String("eval", "walk", "evaluation mode for treecode products: walk or batched")
	ob := cliio.ObsFlagVars()
	flag.Parse()

	evalMode, err := core.ParseEvalMode(*evalStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := (core.Config{Degree: *degree, Alpha: *alpha}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	col, err := ob.Start("treecode.bemsolve")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var m *mesh.Mesh
	switch *surface {
	case "sphere":
		m = mesh.Sphere(*density, 1, vec.V3{})
	case "propeller":
		m = mesh.Propeller(3, *density)
	case "gripper":
		m = mesh.Gripper(*density)
	default:
		fmt.Fprintln(os.Stderr, "unknown surface:", *surface)
		os.Exit(1)
	}
	fmt.Printf("%s: %d elements, %d nodes (%d unknowns), eval=%s\n",
		*surface, m.NumTris(), m.NumVerts(), m.NumVerts(), evalMode)

	op, err := bem.New(m, *quad, &core.Config{Method: core.Adaptive, Degree: *degree, Alpha: *alpha, Eval: evalMode, Obs: col})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := m.NumVerts()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 // unit boundary potential
	}
	x := make([]float64, n)
	opts := krylov.Options{Restart: *restart, MaxIters: 500, Tol: *tol}
	if *precond {
		bj, err := op.BlockPreconditioner(*blockSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Precond = bj
		fmt.Printf("near-field block-Jacobi preconditioner, block size %d\n", *blockSize)
	}
	start := time.Now()
	res, err := krylov.GMRES(krylov.OperatorFunc(op.TreeOperator()), b, x, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("GMRES(%d): %d matvecs, residual %s, converged=%v, %.2fs\n",
		*restart, res.Iterations, stats.FormatFloat(res.Residual), res.Converged, elapsed.Seconds())
	fmt.Println("residual history (per product):")
	for i, r := range res.History {
		if i%5 == 0 || i == len(res.History)-1 {
			fmt.Printf("  %3d  %s\n", i, stats.FormatFloat(r))
		}
	}
	q := op.IntegrateDensity(x)
	fmt.Printf("total induced charge (capacitance at unit potential): %.5f\n", q)
	if *surface == "sphere" {
		fmt.Printf("analytic capacitance of the unit sphere: 1.00000 (error %.2f%%)\n",
			100*absf(q-1))
	}
	if err := ob.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "bemsolve: writing obs trace: %v\n", err)
		os.Exit(1)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
