// Ablation benchmarks for the design choices DESIGN.md calls out: the
// acceptance-criterion form, the octree leaf capacity, the parallel
// schedule and chunk size, and the O(p^4) vs rotation-accelerated O(p^3)
// translation operators. Each reports the metric the choice trades off
// (error, terms, speedup) so `go test -bench=Ablation` quantifies every
// knob.
package treecode

import (
	"fmt"
	"testing"

	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/mac"
	"treecode/internal/parallel"
	"treecode/internal/points"
	"treecode/internal/stats"
)

// BenchmarkAblationMAC compares the radius-based criterion (sharp, used by
// the error bounds) with the box-dimension form (the operational classic)
// and the conservative min-dist variant.
func BenchmarkAblationMAC(b *testing.B) {
	set, _ := points.Generate(points.Uniform, 8000, 1)
	exact := direct.SelfPotentials(set, 0)
	macs := []struct {
		name string
		m    mac.MAC
	}{
		{"radius", mac.Alpha{Alpha: 0.5}},
		{"box", mac.BoxAlpha{Alpha: 0.5}},
		{"mindist", mac.MinDist{Alpha: 0.5}},
	}
	for _, c := range macs {
		b.Run(c.name, func(b *testing.B) {
			e, err := core.New(set, core.Config{Degree: 4, Alpha: 0.5, MAC: c.m})
			if err != nil {
				b.Fatal(err)
			}
			var phi []float64
			var st *core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi, st = e.Potentials()
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Terms), "terms")
			b.ReportMetric(stats.RelErr2(phi, exact), "relerr")
		})
	}
}

// BenchmarkAblationLeafCap explores the leaf capacity (the paper notes
// 32-64 particle leaves are used in practice for cache performance).
func BenchmarkAblationLeafCap(b *testing.B) {
	set, _ := points.Generate(points.Uniform, 16000, 2)
	for _, cap := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("leaf=%d", cap), func(b *testing.B) {
			e, err := core.New(set, core.Config{Degree: 4, LeafCap: cap})
			if err != nil {
				b.Fatal(err)
			}
			var st *core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st = e.Potentials()
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Terms), "terms")
			b.ReportMetric(float64(st.PP), "pp")
		})
	}
}

// BenchmarkAblationSchedule compares the static costzones placement with
// dynamic self-scheduling in the parallel cost simulator.
func BenchmarkAblationSchedule(b *testing.B) {
	set, _ := points.Generate(points.MultiGauss, 20000, 3)
	e, err := core.New(set, core.Config{Method: core.Adaptive, Degree: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []parallel.Schedule{parallel.Static, parallel.Dynamic} {
		b.Run(s.String(), func(b *testing.B) {
			var rep *parallel.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = parallel.Simulate(e, 32, 64, s, parallel.CostModel{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Speedup, "speedup32")
			b.ReportMetric(rep.Imbalance, "imbalance")
		})
	}
}

// BenchmarkAblationChunkSize explores the aggregation factor w of the
// paper's parallel formulation.
func BenchmarkAblationChunkSize(b *testing.B) {
	set, _ := points.Generate(points.Uniform, 20000, 4)
	e, err := core.New(set, core.Config{Degree: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			var rep *parallel.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = parallel.Simulate(e, 32, w, parallel.Static, parallel.CostModel{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Speedup, "speedup32")
			b.ReportMetric(rep.CommWords, "commwords")
		})
	}
}

// BenchmarkAblationRefQuantile explores the Theorem 3 reference-cluster
// choice: quantile 0 is the theorem's smallest-leaf reference (most
// accurate); quantile 1 promotes the fewest clusters (cheapest), landing
// near the paper's measured near-parity of term counts.
func BenchmarkAblationRefQuantile(b *testing.B) {
	set, _ := points.GenerateCharged(points.Uniform, 16000, 6, 16000, false)
	exact := direct.SelfPotentials(set, 0)
	for _, q := range []float64{0, 0.9, 1.0} {
		b.Run(fmt.Sprintf("q=%g", q), func(b *testing.B) {
			e, err := core.New(set, core.Config{Method: core.Adaptive, Degree: 4, RefQuantile: q})
			if err != nil {
				b.Fatal(err)
			}
			var phi []float64
			var st *core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi, st = e.Potentials()
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Terms), "terms")
			b.ReportMetric(stats.MeanAbsErr(phi, exact), "abserr")
		})
	}
}

// BenchmarkAblationDegreeGrowth quantifies the adaptive method's cost and
// error as alpha varies (alpha controls both acceptance distance and the
// Theorem 3 degree growth rate c = ln4/ln(1/alpha)).
func BenchmarkAblationDegreeGrowth(b *testing.B) {
	set, _ := points.GenerateCharged(points.Uniform, 8000, 5, 8000, false)
	exact := direct.SelfPotentials(set, 0)
	for _, alpha := range []float64{0.3, 0.5, 0.7} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			e, err := core.New(set, core.Config{Method: core.Adaptive, Degree: 4, Alpha: alpha})
			if err != nil {
				b.Fatal(err)
			}
			var phi []float64
			var st *core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi, st = e.Potentials()
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Terms), "terms")
			b.ReportMetric(float64(st.MaxDegree), "maxdegree")
			b.ReportMetric(stats.MeanAbsErr(phi, exact), "abserr")
		})
	}
}
