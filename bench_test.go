// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark reports, besides ns/op, the custom
// metrics the paper's tables contain (multipole terms, relative error,
// simulated speedup), so `go test -bench=. -benchmem` regenerates the
// experimental evidence end to end:
//
//	BenchmarkTable1/...   error + term counts, original vs adaptive
//	BenchmarkFigure2/...  the error/cost growth series
//	BenchmarkTable2/...   32-processor simulated speedups
//	BenchmarkTable3/...   BEM matvec error + time vs the degree-9 reference
//	BenchmarkBaseline*    direct summation and FMM reference points
package treecode

import (
	"fmt"
	"math"
	"testing"

	"treecode/internal/bem"
	"treecode/internal/core"
	"treecode/internal/direct"
	"treecode/internal/mesh"
	"treecode/internal/obs"
	"treecode/internal/parallel"
	"treecode/internal/points"
	"treecode/internal/stats"
	"treecode/internal/tree"
)

// table1Case runs one Table 1 cell: n particles of dist with unit charges.
func table1Case(b *testing.B, dist points.Distribution, n int, method core.Method) {
	set, err := points.GenerateCharged(dist, n, 1, float64(n), false)
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.New(set, core.Config{Method: method, Degree: 4, Alpha: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	var phi []float64
	var st *core.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi, st = e.Potentials()
	}
	b.StopTimer()
	exact := direct.SelfPotentials(set, 0)
	b.ReportMetric(float64(st.Terms), "terms")
	b.ReportMetric(stats.RelErr2(phi, exact), "relerr")
	b.ReportMetric(stats.MeanAbsErr(phi, exact), "abserr")
}

func BenchmarkTable1(b *testing.B) {
	for _, dist := range []points.Distribution{points.Uniform, points.Gaussian, points.MultiGauss} {
		for _, n := range []int{4000, 8000, 16000} {
			for _, m := range []core.Method{core.Original, core.Adaptive} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", dist, n, m), func(b *testing.B) {
					table1Case(b, dist, n, m)
				})
			}
		}
	}
}

// BenchmarkFigure2 regenerates the growth series behind Figure 2: error and
// terms at geometrically growing n for both methods (same data as Table 1
// but as a denser sweep on the uniform distribution).
func BenchmarkFigure2(b *testing.B) {
	for _, n := range []int{2000, 4000, 8000, 16000, 32000} {
		for _, m := range []core.Method{core.Original, core.Adaptive} {
			b.Run(fmt.Sprintf("n=%d/%s", n, m), func(b *testing.B) {
				set, err := points.GenerateCharged(points.Uniform, n, 1, float64(n), false)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.New(set, core.Config{Method: m, Degree: 4, Alpha: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				var st *core.Stats
				var phi []float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					phi, st = e.Potentials()
				}
				b.StopTimer()
				b.ReportMetric(float64(st.Terms), "terms")
				if n <= 16000 {
					b.ReportMetric(stats.MeanAbsErr(phi, direct.SelfPotentials(set, 0)), "abserr")
				}
			})
		}
	}
}

// BenchmarkTable2 regenerates the parallel-performance table: simulated
// 32-processor speedups for uniform40k and non-uniform46k, original and
// adaptive.
func BenchmarkTable2(b *testing.B) {
	cases := []struct {
		name string
		dist points.Distribution
		n    int
	}{
		{"uniform40k", points.Uniform, 40000},
		{"nonuniform46k", points.Gaussian, 46000},
	}
	for _, c := range cases {
		for _, m := range []core.Method{core.Original, core.Adaptive} {
			b.Run(fmt.Sprintf("%s/%s", c.name, m), func(b *testing.B) {
				set, err := points.Generate(c.dist, c.n, 1)
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.New(set, core.Config{Method: m, Degree: 4, Alpha: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				var rep *parallel.Report
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err = parallel.Simulate(e, 32, 64, parallel.Static, parallel.CostModel{})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(rep.Speedup, "speedup32")
				b.ReportMetric(rep.Efficiency, "efficiency")
				b.ReportMetric(rep.CommWords, "commwords")
			})
		}
	}
}

// BenchmarkTable3 regenerates the BEM single-iteration experiment: one
// treecode matrix-vector product on the propeller and gripper surfaces,
// with error measured against the degree-9 reference product.
func BenchmarkTable3(b *testing.B) {
	surfaces := []struct {
		name string
		m    *mesh.Mesh
	}{
		{"propeller", mesh.Propeller(3, 1)},
		{"gripper", mesh.Gripper(1)},
	}
	for _, s := range surfaces {
		n := s.m.NumVerts()
		src := make([]float64, n)
		for i := range src {
			src[i] = 1 + 0.5*math.Sin(float64(i))
		}
		refOp, err := bem.New(s.m, 6, &core.Config{Method: core.Original, Degree: 9, Alpha: 0.4})
		if err != nil {
			b.Fatal(err)
		}
		ref := make([]float64, n)
		if _, err := refOp.TreeApply(ref, src); err != nil {
			b.Fatal(err)
		}
		for _, m := range []core.Method{core.Original, core.Adaptive} {
			for _, p := range []int{2, 4} {
				b.Run(fmt.Sprintf("%s/%s/p=%d", s.name, m, p), func(b *testing.B) {
					op, err := bem.New(s.m, 6, &core.Config{Method: m, Degree: p, Alpha: 0.4})
					if err != nil {
						b.Fatal(err)
					}
					dst := make([]float64, n)
					var st *core.Stats
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st, err = op.TreeApply(dst, src)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(stats.RelErr2(dst, ref), "relerr")
					b.ReportMetric(float64(st.Terms), "terms")
				})
			}
		}
	}
}

// BenchmarkComplexityRatio measures the claim behind the paper's 7/3
// analysis: the new/original term ratio at growing n (Theorem on marginal
// extra computation).
func BenchmarkComplexityRatio(b *testing.B) {
	for _, n := range []int{8000, 32000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			set, err := points.GenerateCharged(points.Uniform, n, 1, float64(n), false)
			if err != nil {
				b.Fatal(err)
			}
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				orig, err := core.New(set, core.Config{Method: core.Original, Degree: 4, Alpha: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				_, stO := orig.Potentials()
				adpt, err := core.New(set, core.Config{Method: core.Adaptive, Degree: 4, Alpha: 0.5})
				if err != nil {
					b.Fatal(err)
				}
				_, stA := adpt.Potentials()
				ratio = float64(stA.Terms) / float64(stO.Terms)
			}
			b.ReportMetric(ratio, "terms-ratio")
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on the
// hot evaluation path. "off" is the production configuration (nil collector:
// every obs entry point reduces to a single nil check), "on" attaches a
// collector recording the full MAC census, degree histogram, opening ratios,
// and Theorem 2 budget. The contract is that "off" stays within ~2% of a
// build that predates the obs layer; comparing the two sub-benchmarks shows
// what turning instrumentation on actually costs.
func BenchmarkObsOverhead(b *testing.B) {
	set, err := points.GenerateCharged(points.Uniform, 16000, 1, 16000, false)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, instrument bool) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var col *obs.Collector
			if instrument {
				// A fresh collector per iteration keeps span memory bounded
				// and charges the setup cost to the instrumented case.
				col = obs.New()
			}
			e, err := core.New(set, core.Config{Method: core.Adaptive, Degree: 4, Alpha: 0.5, Obs: col})
			if err != nil {
				b.Fatal(err)
			}
			e.Potentials()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkBaselineDirect is the exact-summation baseline the treecodes are
// measured against.
func BenchmarkBaselineDirect(b *testing.B) {
	set, _ := points.Generate(points.Uniform, 8000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		direct.SelfPotentials(set, 0)
	}
}

// BenchmarkBaselineFMM is the FMM reference point (the paper's "ongoing
// work" extension).
func BenchmarkBaselineFMM(b *testing.B) {
	parts, _ := Generate(Uniform, 8000, 1)
	f, err := NewFMM(parts, FMMConfig{Degree: 4, Alpha: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Potentials()
	}
}

// BenchmarkGMRESSolve regenerates the paper's convergence claim: a full
// GMRES(10) boundary solve with treecode products.
func BenchmarkGMRESSolve(b *testing.B) {
	m := mesh.Sphere(2, 1, Vec3{})
	bp, err := NewBoundaryProblem(m, BoundaryConfig{})
	if err != nil {
		b.Fatal(err)
	}
	g := make([]float64, bp.N())
	for i := range g {
		g[i] = 1
	}
	var res *SolveResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = bp.Solve(g, 1e-6, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Iterations), "matvecs")
	b.ReportMetric(math.Abs(bp.TotalCharge(res.Density)-1), "cap-error")
}

// constructionSet is the 100k-particle workload of the construction
// benchmarks (BenchmarkTreeBuild / BenchmarkUpward / BenchmarkRecharge),
// matching the tentpole target "tree build + upward on 100k particles".
func constructionSet(b *testing.B) *points.Set {
	b.Helper()
	set, err := points.Generate(points.Uniform, 100000, 42)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkTreeBuild times the parallel octree constructions (recursive
// octant partition and Morton sort) at 1, 4, and 8 workers.
func BenchmarkTreeBuild(b *testing.B) {
	set := constructionSet(b)
	for _, bc := range []struct {
		name  string
		build func(*points.Set, tree.Config) (*tree.Tree, error)
	}{{"recursive", tree.Build}, {"morton", tree.BuildMorton}} {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", bc.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bc.build(set, tree.Config{LeafCap: 8, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkUpward times the level-synchronized P2M/M2M pass alone.
func BenchmarkUpward(b *testing.B) {
	set := constructionSet(b)
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e, err := core.New(set, core.Config{Method: core.Adaptive, Alpha: 0.5, Degree: 4, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Upward()
			}
		})
	}
}

// BenchmarkRecharge times SetCharges — the per-GMRES-iteration cost of the
// BEM solver — for both evaluation modes at 1, 4, and 8 workers.
func BenchmarkRecharge(b *testing.B) {
	set := constructionSet(b)
	q := make([]float64, set.N())
	for i, p := range set.Particles {
		q[i] = 1.1 * p.Charge
	}
	for _, mode := range []core.EvalMode{core.EvalWalk, core.EvalBatched} {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, w), func(b *testing.B) {
				e, err := core.New(set, core.Config{Method: core.Adaptive, Alpha: 0.5, Degree: 4, Workers: w, Eval: mode})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.SetCharges(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
