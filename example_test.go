package treecode_test

import (
	"fmt"

	"treecode"
)

// The basic workflow: generate particles, build a system, evaluate.
func Example() {
	parts, _ := treecode.Generate(treecode.Uniform, 5000, 1)
	sys, _ := treecode.NewSystem(parts, treecode.Config{
		Method: treecode.Adaptive,
		Degree: 4,
		Alpha:  0.5,
	})
	phi, _ := sys.Potentials()
	err := treecode.RelativeError(phi, sys.Direct())
	fmt.Printf("n=%d relative error below 1e-4: %v\n", len(phi), err < 1e-4)
	// Output:
	// n=5000 relative error below 1e-4: true
}

// Comparing the paper's two methods at the same minimum degree.
func ExampleConfig() {
	parts, _ := treecode.GenerateCharged(treecode.Uniform, 4000, 1, 4000, false)
	var errs []float64
	for _, m := range []treecode.Method{treecode.Original, treecode.Adaptive} {
		sys, _ := treecode.NewSystem(parts, treecode.Config{Method: m, Degree: 3})
		phi, _ := sys.Potentials()
		errs = append(errs, treecode.RelativeError(phi, sys.Direct()))
	}
	fmt.Printf("adaptive beats original: %v\n", errs[1] < errs[0])
	// Output:
	// adaptive beats original: true
}

// Solving a boundary-element problem: the capacitance of the unit sphere.
func ExampleBoundaryProblem_Solve() {
	m := treecode.SphereMesh(2, 1, treecode.Vec3{})
	bp, _ := treecode.NewBoundaryProblem(m, treecode.BoundaryConfig{})
	g := make([]float64, bp.N())
	for i := range g {
		g[i] = 1
	}
	res, _ := bp.Solve(g, 1e-6, 300)
	c := bp.TotalCharge(res.Density)
	fmt.Printf("converged=%v capacitance within 3%% of exact: %v\n",
		res.Converged, c > 0.97 && c < 1.03)
	// Output:
	// converged=true capacitance within 3% of exact: true
}

// Evaluating fields and total electrostatic energy.
func ExampleSystem_Fields() {
	parts, _ := treecode.Generate(treecode.Gaussian, 2000, 5)
	sys, _ := treecode.NewSystem(parts, treecode.Config{Degree: 6, Alpha: 0.4})
	_, field, _ := sys.Fields()
	u, _ := sys.Energy()
	fmt.Printf("fields=%d energy positive for like charges: %v\n", len(field), u > 0)
	// Output:
	// fields=2000 energy positive for like charges: true
}
